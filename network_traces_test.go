package earmac

// The multi-channel golden-trace conformance corpus: line and star
// topologies × two algorithms, each pinned by a committed trace-v2
// recording whose footer carries the network's aggregate counters. The
// conformance test asserts the same three-way equivalence the
// single-channel corpus does — the recorded run, a checked-path replay,
// and a fast-path replay must agree bit-for-bit on counters and on the
// re-recorded entry stream — plus the per-channel budget-split audit.
// Regenerate with
//
//	go test -run TestNetworkGoldenTraceCorpus -update .

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/network"
	"earmac/internal/scenario"
)

// networkCorpusCases: β = 3 with 3 channels keeps the burst split exact
// (each entry bucket gets β/C = 1), so the recorded streams witness the
// clean Σ(ρ_c, β_c) = (ρ, β) budget-split invariant.
func networkCorpusCases() []corpusCase {
	var out []corpusCase
	for _, topo := range []string{"line", "star"} {
		for _, alg := range []string{"orchestra", "count-hop"} {
			out = append(out, corpusCase{"net-" + topo + "-" + alg, Config{
				Algorithm: alg, N: 5,
				Topology: topo, Channels: 3,
				RhoNum: 1, RhoDen: 2, Beta: 3,
				Pattern: "bernoulli", Seed: 11, Rounds: 3000,
			}})
		}
	}
	// Grid and random want a composite channel count: 4 channels form a
	// 2×2 mesh, and β = 4 keeps the split exact again. The random graph
	// draws its edges from the same Config.Seed that seeds the pattern.
	for _, topo := range []string{"grid", "random"} {
		for _, alg := range []string{"orchestra", "count-hop"} {
			out = append(out, corpusCase{"net-" + topo + "-" + alg, Config{
				Algorithm: alg, N: 5,
				Topology: topo, Channels: 4,
				RhoNum: 1, RhoDen: 2, Beta: 4,
				Pattern: "bernoulli", Seed: 11, Rounds: 3000,
			}})
		}
	}
	return out
}

func TestNetworkGoldenTraceCorpus(t *testing.T) {
	cases := networkCorpusCases()
	if *update {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, c := range cases {
			f, err := os.Create(tracePath(c.name))
			if err != nil {
				t.Fatal(err)
			}
			cfg := c.cfg
			cfg.RecordTo = f
			if _, err := Run(cfg); err != nil {
				t.Fatalf("%s: recording: %v", c.name, err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f, err := os.Open(tracePath(c.name))
			if err != nil {
				t.Fatalf("missing golden trace (regenerate with -update): %v", err)
			}
			tr, err := ReadTrace(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			// Undisrupted network recordings stay at version 2 — the
			// lowest sufficient version — even though this build writes
			// v3 for disrupted runs, so the committed corpus is
			// byte-stable across the v3 reader/writer.
			if tr.Header.Version != scenario.TraceVersionMulti || tr.Header.Channels != c.cfg.Channels {
				t.Fatalf("header %+v: want version %d with %d channels", tr.Header, scenario.TraceVersionMulti, c.cfg.Channels)
			}
			if tr.Footer == nil || tr.Footer.Counters == nil {
				t.Fatal("golden trace has no pinned counters")
			}
			want := *tr.Footer.Counters

			// Budget-split invariant: every channel's recorded entry
			// stream independently respects the split (ρ/C, β/C) type.
			cfg, err := TraceConfig(tr)
			if err != nil {
				t.Fatal(err)
			}
			typ := adversary.T(cfg.RhoNum, cfg.RhoDen, cfg.Beta)
			split := network.SplitType(typ, cfg.Channels)
			if err := scenario.CheckAdmissibleSplit(tr, split, cfg.Channels); err != nil {
				t.Errorf("golden trace violates the split contract: %v", err)
			}

			modes := []struct {
				name   string
				mutate func(*Config)
			}{
				{"checked", func(c *Config) { c.ForceChecked = true }},
				{"fast", func(c *Config) { c.Lenient, c.DisableChecks = true, true }},
			}
			for _, mode := range modes {
				rcfg, err := ReplayConfig(tr)
				if err != nil {
					t.Fatal(err)
				}
				mode.mutate(&rcfg)
				var buf bytes.Buffer
				rcfg.RecordTo = &buf
				rep, err := Run(rcfg)
				if err != nil {
					t.Fatalf("%s replay: %v", mode.name, err)
				}
				if len(rep.Violations) != 0 {
					t.Fatalf("%s replay hit violations: %v", mode.name, rep.Violations)
				}
				if rep.Topology != c.cfg.Topology || rep.Channels != c.cfg.Channels ||
					len(rep.PerChannel) != c.cfg.Channels {
					t.Fatalf("%s replay report lost the network dimension: %+v", mode.name, rep)
				}
				got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("%s replay re-recording: %v", mode.name, err)
				}
				if got.Footer == nil || got.Footer.Counters == nil {
					t.Fatalf("%s replay recorded no counters", mode.name)
				}
				if *got.Footer.Counters != want {
					t.Errorf("%s replay counters differ from the golden footer:\ngot  %+v\nwant %+v",
						mode.name, *got.Footer.Counters, want)
				}
				if !reflect.DeepEqual(got.Events, tr.Events) {
					t.Errorf("%s replay re-recorded a different entry stream (%d events vs %d)",
						mode.name, len(got.Events), len(tr.Events))
				}
			}
		})
	}
}

// TestNetworkGoldenTraceCorpusComplete pins the multi-channel corpus
// inventory: line and star × two algorithms.
func TestNetworkGoldenTraceCorpusComplete(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(traceDir, "net-*.trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if want := len(networkCorpusCases()); len(files) != want {
		t.Fatalf("network corpus has %d traces, want %d; regenerate with -update", len(files), want)
	}
}

// TestNetworkRunDeliversAcrossChannels is the end-to-end sanity check
// behind the corpus: under sustained cross-channel traffic a line
// network actually relays — packets reach destinations in other
// channels, and relays show up in the per-channel report.
func TestNetworkRunDeliversAcrossChannels(t *testing.T) {
	rep, err := Run(Config{
		Algorithm: "orchestra", N: 5, Topology: "line", Channels: 3,
		RhoNum: 1, RhoDen: 2, Beta: 3, Pattern: "uniform", Seed: 3, Rounds: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered == 0 {
		t.Fatal("network delivered nothing")
	}
	var relayed int64
	for _, c := range rep.PerChannel {
		relayed += c.Relayed
	}
	if relayed == 0 {
		t.Error("no packet was relayed across a channel boundary")
	}
	if !rep.Stable {
		t.Errorf("orchestra line at ρ=1/2 should be stable: %+v", rep)
	}
}

// TestNetworkTraceLogger: Config.Trace works on network runs (it used
// to be silently ignored) — per-channel labeled event lines within the
// configured window.
func TestNetworkTraceLogger(t *testing.T) {
	var buf bytes.Buffer
	_, err := Run(Config{
		Algorithm: "orchestra", N: 4, Topology: "line", Channels: 2,
		RhoNum: 1, RhoDen: 2, Beta: 2, Rounds: 50,
		Trace: &buf, TraceUpTo: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"r0", "c0.s0", "c1.s0"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "r4 ") {
		t.Errorf("trace ran past TraceUpTo:\n%s", out)
	}
}
