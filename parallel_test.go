package earmac

// Facade-level worker-count-independence suite: a network run with any
// NetWorkers value must be indistinguishable from the serial run — the
// marshalled Report and the recorded trace-v2 stream are compared byte
// for byte, across every topology kind and two algorithms. This is the
// contract that lets NetWorkers stay out of the Config fingerprint (a
// parallel run may serve a cached serial result, and vice versa).

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNetworkWorkerCountInvariance(t *testing.T) {
	const channels = 4
	record := func(t *testing.T, cfg Config) (report, trace []byte) {
		t.Helper()
		var buf bytes.Buffer
		cfg.RecordTo = &buf
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return js, buf.Bytes()
	}
	for _, topo := range []string{"line", "star", "clique", "grid", "random"} {
		for _, alg := range []string{"orchestra", "count-hop"} {
			t.Run(topo+"-"+alg, func(t *testing.T) {
				cfg := Config{
					Algorithm: alg, N: 5,
					Topology: topo, Channels: channels,
					RhoNum: 1, RhoDen: 2, Beta: channels,
					Pattern: "bernoulli", Seed: 13, Rounds: 1500,
					NetWorkers: 1,
				}
				wantRep, wantTrace := record(t, cfg)
				for _, workers := range []int{2, channels, 2 * channels} {
					cfg.NetWorkers = workers
					gotRep, gotTrace := record(t, cfg)
					if !bytes.Equal(gotRep, wantRep) {
						t.Errorf("workers=%d: report diverges from serial:\ngot  %s\nwant %s",
							workers, gotRep, wantRep)
					}
					if !bytes.Equal(gotTrace, wantTrace) {
						t.Errorf("workers=%d: recorded trace diverges from serial (%d bytes vs %d)",
							workers, len(gotTrace), len(wantTrace))
					}
				}
			})
		}
	}
}

// TestNetWorkersOutsideFingerprint pins the cache-key consequence of
// worker-count independence: configs differing only in NetWorkers share
// a fingerprint, so the service's content-addressed cache can hand a
// serial run's report to a parallel request byte-identically.
func TestNetWorkersOutsideFingerprint(t *testing.T) {
	base := Config{
		Algorithm: "orchestra", N: 5, Topology: "line", Channels: 3,
		RhoNum: 1, RhoDen: 2, Beta: 3, Rounds: 1000,
	}
	par := base
	par.NetWorkers = 8
	if base.Fingerprint() != par.Fingerprint() {
		t.Error("NetWorkers changed the fingerprint; parallelism must not fork cache keys")
	}
}
