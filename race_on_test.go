//go:build race

package earmac

// See race_off_test.go.
const raceEnabled = true
