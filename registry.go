package earmac

import (
	"fmt"

	"earmac/internal/adversary"
	"earmac/internal/network"
	"earmac/internal/registry"

	// Built-in algorithms self-register from their init functions; linking
	// them here populates the registry for every façade user.
	_ "earmac/internal/algorithms/adjwin"
	_ "earmac/internal/algorithms/counthop"
	_ "earmac/internal/algorithms/kclique"
	_ "earmac/internal/algorithms/kcycle"
	_ "earmac/internal/algorithms/ksubsets"
	_ "earmac/internal/algorithms/orchestra"
	_ "earmac/internal/algorithms/randmac"
	_ "earmac/internal/broadcast"
)

// Typed configuration errors. Config.Validate, Run, and the registries
// wrap exactly one of these per failure; test with errors.Is.
var (
	ErrUnknownAlgorithm = registry.ErrUnknownAlgorithm
	ErrUnknownPattern   = registry.ErrUnknownPattern
	ErrBadRate          = registry.ErrBadRate
	ErrBadBurst         = registry.ErrBadBurst
	ErrBadSize          = registry.ErrBadSize
	ErrBadCap           = registry.ErrBadCap
	ErrBadRounds        = registry.ErrBadRounds
	ErrBadStation       = registry.ErrBadStation
	ErrBadTrace         = registry.ErrBadTrace
	// ErrBadTopology marks an invalid network-of-channels spec: unknown
	// kind, too few channels, malformed or disconnecting custom links,
	// or channel fields set without a topology.
	ErrBadTopology = registry.ErrBadTopology
	// ErrConflict marks options that are individually valid but mutually
	// exclusive — e.g. a replayed trace combined with a scenario source
	// the trace already supplies, or a submission the serving layer
	// cannot honour while draining.
	ErrConflict = registry.ErrConflict
)

// AlgorithmMeta declares an algorithm's capabilities: energy cap, the
// paper's plain-packet / direct / oblivious taxonomy flags, and the valid
// (n, k) ranges. See the registry package for field documentation.
type AlgorithmMeta = registry.AlgorithmMeta

// AlgorithmEntry is one algorithm-registry entry: a name plus its
// metadata.
type AlgorithmEntry = registry.Algorithm

// SystemBuilder constructs a system for n stations under energy-cap
// parameter k (ignored by fixed-cap algorithms).
type SystemBuilder = registry.Builder

// PatternMeta declares what an injection pattern consumes (seed,
// src/dest targeting).
type PatternMeta = adversary.PatternMeta

// PatternParams parameterizes a pattern builder.
type PatternParams = adversary.PatternParams

// PatternBuilder constructs an injection pattern from its parameters.
type PatternBuilder = adversary.PatternBuilder

// PatternEntry is one pattern-registry entry.
type PatternEntry = adversary.PatternEntry

// RegisterAlgorithm makes an algorithm available to Run, Suite, and the
// CLIs under the given name. Call it from an init function; it panics on
// a duplicate name, an empty name, or a nil builder.
func RegisterAlgorithm(name string, meta AlgorithmMeta, build SystemBuilder) {
	registry.RegisterAlgorithm(name, meta, build)
}

// RegisterPattern makes an injection pattern available under the given
// name. Call it from an init function; it panics on a duplicate name, an
// empty name, or a nil builder.
func RegisterPattern(name string, meta PatternMeta, build PatternBuilder) {
	adversary.RegisterPattern(name, meta, build)
}

// Algorithms lists the available algorithm names, sorted.
func Algorithms() []string { return registry.Algorithms() }

// AlgorithmInfo returns the registry entry for one algorithm.
func AlgorithmInfo(name string) (AlgorithmEntry, bool) { return registry.Lookup(name) }

// AllAlgorithms returns every algorithm entry sorted by name, for
// capability filtering without instantiating systems.
func AllAlgorithms() []AlgorithmEntry { return registry.All() }

// Patterns lists the available injection pattern names, sorted.
func Patterns() []string { return adversary.Patterns() }

// Topologies lists the supported network topology kinds, sorted. Any of
// them (via Config.Topology) turns a run into a network of channels.
func Topologies() []string { return network.Kinds() }

// PatternInfo returns the registry entry for one pattern.
func PatternInfo(name string) (PatternEntry, bool) { return adversary.PatternInfo(name) }

// AllPatterns returns every pattern entry sorted by name.
func AllPatterns() []PatternEntry { return adversary.AllPatterns() }

// Validate reports whether the configuration can run, after applying the
// same defaults Run applies. Every failure wraps one of the typed errors
// (ErrUnknownAlgorithm, ErrBadRate, …). Validation is metadata-only: no
// system is instantiated, so builder-level constraints that depend on
// instantiation (e.g. the k-subsets C(n,k) thread cap) surface from Run
// instead.
func (c Config) Validate() error {
	return c.withDefaults().validate()
}

// validate checks an already-defaulted config.
func (c Config) validate() error {
	alg, ok := registry.Lookup(c.Algorithm)
	if !ok {
		return fmt.Errorf("earmac: %w %q (have %v)", ErrUnknownAlgorithm, c.Algorithm, Algorithms())
	}
	if err := alg.CheckNK(c.Algorithm, c.N, c.K); err != nil {
		return fmt.Errorf("earmac: %w", err)
	}
	stations := c.N // the station id space targeted patterns draw from
	if c.Topology == "" {
		if c.Channels != 0 {
			return fmt.Errorf("earmac: %w: channels = %d without a topology (set Topology to one of %v)",
				ErrBadTopology, c.Channels, Topologies())
		}
		if len(c.Links) != 0 {
			return fmt.Errorf("earmac: %w: links given without a topology (set Topology to %q)",
				ErrBadTopology, network.Custom)
		}
	} else {
		spec := network.Spec{Kind: c.Topology, Channels: c.Channels, N: c.N, Links: c.Links, Seed: c.Seed}
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("earmac: %w", err)
		}
		stations = c.N * c.Channels
	}
	checkPattern := func(name string) error {
		pat, ok := adversary.PatternInfo(name)
		if !ok {
			return fmt.Errorf("earmac: %w %q (have %v)", ErrUnknownPattern, name, Patterns())
		}
		if pat.Targeted {
			if c.Src < 0 || c.Src >= stations {
				return fmt.Errorf("earmac: %w: src %d outside [0, %d)", ErrBadStation, c.Src, stations)
			}
			if c.Dest < 0 || c.Dest >= stations {
				return fmt.Errorf("earmac: %w: dest %d outside [0, %d)", ErrBadStation, c.Dest, stations)
			}
		}
		return nil
	}
	if err := checkPattern(c.Pattern); err != nil {
		return err
	}
	for i, ph := range c.Phases {
		if err := checkPattern(ph.Pattern); err != nil {
			return fmt.Errorf("phase %d: %w", i, err)
		}
		if ph.Rounds < 0 || (ph.Rounds == 0 && i != len(c.Phases)-1) {
			return fmt.Errorf("earmac: %w: phase %d (%s) has %d rounds; only the last phase may be open-ended (0)",
				ErrBadRounds, i, ph.Pattern, ph.Rounds)
		}
	}
	if c.Replay != nil {
		if c.Replay.Header.N != c.N {
			return fmt.Errorf("earmac: %w: trace recorded for n = %d, config has n = %d",
				ErrBadTrace, c.Replay.Header.N, c.N)
		}
		if c.Replay.Header.Channels != c.Channels {
			return fmt.Errorf("earmac: %w: trace recorded for %d channels, config has %d",
				ErrBadTrace, c.Replay.Header.Channels, c.Channels)
		}
	}
	if c.RhoDen <= 0 || c.RhoNum <= 0 {
		return fmt.Errorf("earmac: %w: ρ = %d/%d is not a positive fraction", ErrBadRate, c.RhoNum, c.RhoDen)
	}
	if c.RhoNum > c.RhoDen {
		return fmt.Errorf("earmac: %w: ρ = %d/%d exceeds 1", ErrBadRate, c.RhoNum, c.RhoDen)
	}
	if c.Beta < 1 {
		return fmt.Errorf("earmac: %w: β = %d, need β >= 1", ErrBadBurst, c.Beta)
	}
	channels := 1
	if c.Topology != "" {
		channels = c.Channels
	}
	if c.JamRhoNum == 0 {
		if c.JamRhoDen != 0 || c.JamBeta != 0 {
			return fmt.Errorf("earmac: %w: jam_rho_den/jam_beta set without a jam rate (set JamRhoNum)", ErrBadRate)
		}
	} else {
		if c.JamRhoNum < 0 || c.JamRhoDen <= 0 {
			return fmt.Errorf("earmac: %w: jam ρ = %d/%d is not a positive fraction", ErrBadRate, c.JamRhoNum, c.JamRhoDen)
		}
		if c.JamRhoNum > c.JamRhoDen*int64(channels) {
			return fmt.Errorf("earmac: %w: jam ρ = %d/%d exceeds the %d jammable channel(s) per round",
				ErrBadRate, c.JamRhoNum, c.JamRhoDen, channels)
		}
		if c.JamBeta < 1 {
			return fmt.Errorf("earmac: %w: jam β = %d, need β >= 1", ErrBadBurst, c.JamBeta)
		}
	}
	if _, err := network.NewOutageSchedule(c.Outages, channels); err != nil {
		return fmt.Errorf("earmac: %w: %v", ErrBadTopology, err)
	}
	if c.SleepAfterIdle < 0 || c.WakeEvery < 0 {
		return fmt.Errorf("earmac: %w: negative duty-cycle period (sleep_after_idle %d, wake_every %d)",
			ErrBadRounds, c.SleepAfterIdle, c.WakeEvery)
	}
	if c.EnergyBudget < 0 {
		return fmt.Errorf("earmac: %w: energy_budget = %d", ErrBadCap, c.EnergyBudget)
	}
	if c.WakeEvery > 0 && c.SleepAfterIdle <= 0 {
		return fmt.Errorf("earmac: %w: wake_every = %d without sleep_after_idle (nothing ever sleeps on schedule)",
			ErrConflict, c.WakeEvery)
	}
	if c.disrupted() && !alg.Tolerant {
		return fmt.Errorf("earmac: %w: algorithm %q is not tolerant of disrupted feedback — jamming, outages and "+
			"duty-cycling need a Tolerant algorithm (e.g. \"aloha\")", ErrConflict, c.Algorithm)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("earmac: %w: rounds = %d", ErrBadRounds, c.Rounds)
	}
	if c.StopInjectionsAfter < 0 {
		return fmt.Errorf("earmac: %w: stop-injections-after = %d", ErrBadRounds, c.StopInjectionsAfter)
	}
	return nil
}
