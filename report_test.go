package earmac

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestReportJSONRoundTrip pins the shared Report schema: a measured
// report survives marshal/unmarshal unchanged, so -json CLI output and
// SuiteReport serialization are interchangeable.
func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Run(Config{Algorithm: "count-hop", N: 5, Rounds: 20000})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("round trip changed the report:\n  before %+v\n  after  %+v", rep, back)
	}
}

func TestReportJSONFieldNames(t *testing.T) {
	blob, err := json.Marshal(Report{Algorithm: "x"})
	if err != nil {
		t.Fatal(err)
	}
	s := string(blob)
	for _, want := range []string{
		`"algorithm"`, `"energy_cap"`, `"max_queue"`, `"queue_slope"`,
		`"p99_latency"`, `"mean_energy"`, `"collision_rounds"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report JSON missing %s: %s", want, s)
		}
	}
	// Violations is omitempty: absent on a clean run.
	if strings.Contains(s, "violations") {
		t.Errorf("empty violations serialized: %s", s)
	}
}

// TestSuiteResultSharesReportSchema pins that a suite cell embeds the
// same Report schema Run produces.
func TestSuiteResultSharesReportSchema(t *testing.T) {
	cfg := Config{Algorithm: "orchestra", N: 4, Rounds: 2000}
	direct, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Suite{Configs: []Config{cfg}}.Run(t.Context(), SuiteOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, rep.Results[0].Report) {
		t.Errorf("suite cell report diverges from Run:\n  run   %+v\n  suite %+v",
			direct, rep.Results[0].Report)
	}
}

func TestConfigJSONOmitsRuntimeFields(t *testing.T) {
	cfg := Config{
		Algorithm:  "orchestra",
		OnProgress: func(Progress) {},
	}
	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("config with callbacks must serialize: %v", err)
	}
	if strings.Contains(string(blob), "Progress") || strings.Contains(string(blob), "Trace") {
		t.Errorf("runtime-only fields leaked into JSON: %s", blob)
	}
}
