package earmac

import (
	"context"
	"errors"
	"testing"
)

func TestRunContextMatchesRun(t *testing.T) {
	cfg := Config{Algorithm: "count-hop", N: 5, Rounds: 20000}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.MaxQueue != b.MaxQueue || a.MaxLatency != b.MaxLatency {
		t.Errorf("RunContext diverges from Run: %+v vs %+v", a, b)
	}
}

func TestRunContextCancelledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunContext(ctx, Config{Rounds: 50000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Rounds != 0 {
		t.Errorf("ran %d rounds under a cancelled context", rep.Rounds)
	}
}

func TestRunContextCancelMidRunReturnsPartialReport(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{
		Algorithm:     "orchestra",
		N:             6,
		Rounds:        400000,
		ProgressEvery: 1000,
	}
	calls := 0
	cfg.OnProgress = func(p Progress) {
		calls++
		if p.Round >= 5000 {
			cancel()
		}
	}
	rep, err := RunContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Rounds == 0 || rep.Rounds >= cfg.Rounds {
		t.Errorf("partial report covers %d rounds, want within (0, %d)", rep.Rounds, cfg.Rounds)
	}
	if calls == 0 {
		t.Error("progress callback never fired")
	}
}

// errAfterCtx is a context whose Err flips to Canceled after a fixed
// number of Err calls — a deterministic way to land a cancellation
// between progress marks, where the timing of a real cancel would be
// racy.
type errAfterCtx struct {
	context.Context
	calls, after int
}

func (c *errAfterCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// TestRunContextCancelSnapshotAtCancellationRound: a run cancelled
// between progress marks delivers exactly one closing snapshot, at the
// round the run stopped, and never invokes OnProgress after RunContext
// returns.
func TestRunContextCancelSnapshotAtCancellationRound(t *testing.T) {
	ctx := &errAfterCtx{Context: context.Background(), after: 3}
	var rounds []int64
	returned := false
	cfg := Config{
		Algorithm:     "count-hop",
		N:             4,
		Rounds:        100000,
		ProgressEvery: 1 << 40, // no regular mark before the cancellation
		OnProgress: func(p Progress) {
			if returned {
				t.Error("OnProgress invoked after RunContext returned")
			}
			rounds = append(rounds, p.Round)
		},
	}
	rep, err := RunContext(ctx, cfg)
	returned = true
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The context allows 3 Err checks: 3 chunks of ctxCheckEvery rounds
	// complete before the 4th check observes the cancellation.
	const want = 3 * ctxCheckEvery
	if rep.Rounds != want {
		t.Fatalf("partial report covers %d rounds, want %d", rep.Rounds, want)
	}
	if len(rounds) != 1 || rounds[0] != want {
		t.Errorf("snapshots at rounds %v, want exactly [%d] (closing snapshot at the cancellation round)", rounds, want)
	}
}

// TestRunContextCancelAtMarkNoDuplicateSnapshot: when the cancellation
// lands exactly on a round whose regular snapshot was already delivered
// (here: cancel from inside the callback), no duplicate closing
// snapshot fires — snapshot rounds stay strictly increasing and the last
// one matches the partial report.
func TestRunContextCancelAtMarkNoDuplicateSnapshot(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var rounds []int64
	returned := false
	cfg := Config{
		Algorithm:     "count-hop",
		N:             4,
		Rounds:        100000,
		ProgressEvery: 2500,
		OnProgress: func(p Progress) {
			if returned {
				t.Error("OnProgress invoked after RunContext returned")
			}
			rounds = append(rounds, p.Round)
			if p.Round >= 5000 {
				cancel()
			}
		},
	}
	rep, err := RunContext(ctx, cfg)
	returned = true
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rounds) == 0 {
		t.Fatal("no snapshots delivered")
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i] <= rounds[i-1] {
			t.Fatalf("snapshot rounds not strictly increasing: %v", rounds)
		}
	}
	if last := rounds[len(rounds)-1]; last != rep.Rounds {
		t.Errorf("last snapshot at round %d, partial report covers %d", last, rep.Rounds)
	}
}

func TestRunContextProgressCadence(t *testing.T) {
	var rounds []int64
	cfg := Config{
		Algorithm:     "count-hop",
		N:             4,
		Rounds:        10000,
		ProgressEvery: 2500,
		OnProgress: func(p Progress) {
			rounds = append(rounds, p.Round)
			if p.Total != 10000 {
				t.Errorf("progress total = %d", p.Total)
			}
			if p.Report.Rounds != p.Round {
				t.Errorf("interim report covers %d rounds at mark %d", p.Report.Rounds, p.Round)
			}
		},
	}
	if _, err := RunContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	want := []int64{2500, 5000, 7500, 10000}
	if len(rounds) != len(want) {
		t.Fatalf("progress marks %v, want %v", rounds, want)
	}
	for i := range want {
		if rounds[i] != want[i] {
			t.Fatalf("progress marks %v, want %v", rounds, want)
		}
	}
}

func TestRunContextDefaultProgressEvery(t *testing.T) {
	// With ProgressEvery unset the callback fires about 64 times.
	calls := 0
	cfg := Config{
		Algorithm:  "count-hop",
		N:          4,
		Rounds:     64000,
		OnProgress: func(Progress) { calls++ },
	}
	if _, err := RunContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if calls != 64 {
		t.Errorf("progress fired %d times, want 64", calls)
	}
}
