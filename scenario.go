package earmac

// The public scenario surface: phase schedules as Config data, and the
// replayable trace format. A scenario is data, not code — a Config with
// a seed and phases describes a whole stochastic workload, and a
// recorded trace re-executes any run (stochastic or not) bit-for-bit on
// either simulator path. See DESIGN.md §8 for the model and the
// determinism invariants.

import (
	"encoding/json"
	"fmt"
	"io"

	"earmac/internal/scenario"
)

// Phase is one segment of a scenario's phase schedule: a registered
// pattern active for Rounds consecutive rounds. Rounds must be
// positive, except on the final phase where 0 means "for the rest of
// the run"; a schedule whose final phase is bounded cycles instead.
type Phase struct {
	Pattern string `json:"pattern"`
	Rounds  int64  `json:"rounds"`
}

// Trace is a decoded injection trace: a versioned header carrying the
// recording Config, the per-round injection events, and a footer
// pinning the recorded run's final counters. Produce one with
// Config.RecordTo, read one with ReadTrace, re-run one with
// ReplayConfig.
type Trace = scenario.Trace

// TraceVersion is the newest trace format version this build writes:
// version 2 adds a channel id per event for networks of channels,
// version 3 adds jam/outage/sleep event kinds for disrupted and
// duty-cycled runs. Recordings declare the lowest sufficient version —
// an undisrupted single-channel run still emits version 1, a network
// run version 2, both byte-compatible with every previously recorded
// trace — and ReadTrace accepts all three.
const TraceVersion = scenario.TraceVersion

// ReadTrace decodes a recorded trace. Malformed input — unknown
// version, bad lines, non-increasing (round, channel) order — fails
// with an error wrapping ErrBadTrace; ReadTrace never panics.
func ReadTrace(r io.Reader) (*Trace, error) { return scenario.ReadTrace(r) }

// WriteTrace re-encodes a decoded trace. WriteTrace followed by
// ReadTrace reproduces the trace exactly.
func WriteTrace(w io.Writer, t *Trace) error { return scenario.Write(w, t) }

// TraceConfig returns the Config recorded in the trace's header.
func TraceConfig(t *Trace) (Config, error) {
	if len(t.Header.Config) == 0 {
		return Config{}, fmt.Errorf("earmac: %w: trace header carries no config", ErrBadTrace)
	}
	var c Config
	if err := json.Unmarshal(t.Header.Config, &c); err != nil {
		return Config{}, fmt.Errorf("earmac: %w: decoding trace config: %v", ErrBadTrace, err)
	}
	return c, nil
}

// ReplayConfig assembles the Config that re-executes a recorded trace:
// the recorded Config with Replay set, so Run injects exactly the
// recorded stream. A recording cut short (cancelled mid-run) carries a
// footer pinned at the round it stopped; the returned Config's horizon
// is truncated to match, so the replay reproduces the partial run
// rather than running the configured horizon past the recording. Tweak
// the returned Config's Lenient / DisableChecks / ForceChecked fields
// to replay on the fast or the checked path; a faithful replay
// reproduces the recorded footer's counters bit-identically on both.
func ReplayConfig(t *Trace) (Config, error) {
	c, err := TraceConfig(t)
	if err != nil {
		return Config{}, err
	}
	c.Replay = t
	if t.Footer != nil && t.Footer.Counters != nil &&
		t.Footer.Counters.Rounds > 0 && t.Footer.Counters.Rounds < c.Rounds {
		c.Rounds = t.Footer.Counters.Rounds
	}
	return c, nil
}
