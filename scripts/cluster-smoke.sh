#!/usr/bin/env sh
# Smoke test for the cluster tier: a coordinator sharding suite cells
# across two earmac-serve workers must produce SuiteReports that are
# byte-identical to a single-process run — including when one worker is
# killed -9 mid-grid, and when a restarted coordinator serves the whole
# grid from its disk cache with every worker gone. The CI cluster-smoke
# job runs this script; locally: make cluster-smoke.
set -eu

COORD="${EARMAC_COORD_ADDR:-127.0.0.1:8330}"
W1="${EARMAC_WORKER1_ADDR:-127.0.0.1:8331}"
W2="${EARMAC_WORKER2_ADDR:-127.0.0.1:8332}"
WORK="$(mktemp -d)"
PIDS=""
cleanup() {
    for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_healthy() {
    i=0
    until curl -sf "http://$1/v1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "cluster-smoke: $1 never became healthy" >&2
            cat "$WORK"/*.log >&2 || true
            exit 1
        fi
        sleep 0.2
    done
}

echo "cluster-smoke: building earmac-serve and earmac-sweep"
go build -o "$WORK/earmac-serve" ./cmd/earmac-serve
go build -o "$WORK/earmac-sweep" ./cmd/earmac-sweep

"$WORK/earmac-serve" -addr "$W1" -parallel 2 2>"$WORK/w1.log" &
W1_PID=$!; PIDS="$PIDS $W1_PID"
"$WORK/earmac-serve" -addr "$W2" -parallel 2 2>"$WORK/w2.log" &
W2_PID=$!; PIDS="$PIDS $W2_PID"
"$WORK/earmac-serve" -addr "$COORD" -coordinator -workers "$W1,$W2" \
    -cache-dir "$WORK/cache" -retries 5 -parallel 4 2>"$WORK/coord.log" &
COORD_PID=$!; PIDS="$PIDS $COORD_PID"
wait_healthy "$W1"
wait_healthy "$W2"
wait_healthy "$COORD"

SWEEP="-mode rho -alg count-hop -n 6 -rounds 1000000 -json"

echo "cluster-smoke: single-process reference sweep"
# shellcheck disable=SC2086 # SWEEP is a flag list, splitting is the point
"$WORK/earmac-sweep" $SWEEP >"$WORK/ref.json"

echo "cluster-smoke: distributed sweep, killing worker 2 mid-grid"
# shellcheck disable=SC2086
"$WORK/earmac-sweep" $SWEEP -server "$COORD" >"$WORK/dist.json" &
SWEEP_PID=$!
# Kill -9 the second worker as soon as it has completed its first cell —
# cells are still pending, so the coordinator must re-dispatch its share.
i=0
while :; do
    if curl -sf "http://$W2/v1/healthz" 2>/dev/null | grep -Eq '"done":[1-9]'; then
        kill -9 "$W2_PID" 2>/dev/null || true
        echo "cluster-smoke: worker 2 killed"
        break
    fi
    kill -0 "$SWEEP_PID" 2>/dev/null || break # sweep already finished
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "cluster-smoke: worker 2 never served a cell" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$SWEEP_PID" || {
    echo "cluster-smoke: distributed sweep failed:" >&2
    cat "$WORK/coord.log" >&2
    exit 1
}
cmp "$WORK/ref.json" "$WORK/dist.json" || {
    echo "cluster-smoke: distributed SuiteReport differs from single-process run" >&2
    exit 1
}
echo "cluster-smoke: byte-identical despite worker death"

echo "cluster-smoke: worker healthz carries job and cache counters"
curl -sf "http://$W1/v1/healthz" >"$WORK/w1-health.json"
for key in '"jobs"' '"done"' '"failed"' '"cancelled"' '"evictions"' '"disk_hits"'; do
    grep -q "$key" "$WORK/w1-health.json" || {
        echo "cluster-smoke: worker healthz missing $key:" >&2
        cat "$WORK/w1-health.json" >&2
        exit 1
    }
done

echo "cluster-smoke: restarting coordinator with all workers gone (disk cache must carry the grid)"
kill -TERM "$COORD_PID"
wait "$COORD_PID" 2>/dev/null || true
kill -9 "$W1_PID" 2>/dev/null || true
"$WORK/earmac-serve" -addr "$COORD" -coordinator -workers "127.0.0.1:1" \
    -cache-dir "$WORK/cache" 2>"$WORK/coord2.log" &
COORD_PID=$!; PIDS="$PIDS $COORD_PID"
wait_healthy "$COORD"
curl -sf -X POST "http://$COORD/v1/cache/preload" >"$WORK/preload.json"
grep -Eq '"loaded":[1-9]' "$WORK/preload.json" || {
    echo "cluster-smoke: preload loaded nothing:" >&2
    cat "$WORK/preload.json" >&2
    exit 1
}
# shellcheck disable=SC2086
"$WORK/earmac-sweep" $SWEEP -server "$COORD" >"$WORK/cached.json" || {
    echo "cluster-smoke: cached sweep failed:" >&2
    cat "$WORK/coord2.log" >&2
    exit 1
}
cmp "$WORK/ref.json" "$WORK/cached.json" || {
    echo "cluster-smoke: disk-served SuiteReport differs" >&2
    exit 1
}
curl -sf "http://$COORD/v1/healthz" | grep -q '"totals":{"dispatched":0' || {
    echo "cluster-smoke: restarted coordinator dispatched cells; disk tier did not carry the grid:" >&2
    curl -sf "http://$COORD/v1/healthz" >&2 || true
    exit 1
}

echo "cluster-smoke: OK (sharded run byte-identical, survives worker death, disk cache serves restarts)"
