#!/bin/sh
# cover-summary.sh <coverprofile> — per-package, statement-weighted
# coverage summary from a Go coverprofile (what `make cover` prints).
# Profile lines look like
#   earmac/internal/core/sim.go:177.22,184.3 5 1
# i.e. <file>:<range> <statements> <hitcount>; we group by package
# directory and weight by statement count.
set -e
if [ $# -ne 1 ] || [ ! -f "$1" ]; then
    echo "usage: $0 <coverprofile>" >&2
    exit 2
fi
awk '
NR == 1 { next }  # "mode:" line
{
    pkg = $1
    sub(/:[^:]*$/, "", pkg)      # strip :range suffix
    sub(/\/[^\/]*\.go$/, "", pkg) # strip file name
    stmts[pkg] += $(NF-1)
    total += $(NF-1)
    if ($NF > 0) {
        covered[pkg] += $(NF-1)
        totalCovered += $(NF-1)
    }
}
END {
    for (p in stmts)
        printf "%-40s %6.1f%%  (%d/%d statements)\n", p, 100 * covered[p] / stmts[p], covered[p], stmts[p]
    printf "%-40s %6.1f%%  (%d/%d statements)\n", "TOTAL", 100 * totalCovered / total, totalCovered, total
}' "$1" | sort
