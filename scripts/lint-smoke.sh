#!/bin/sh
# Lint smoke: prove earmac-lint actually gates before trusting its
# green. The linter must (1) exit nonzero on the committed hotalloc
# fixture, which is seeded with violations, and (2) exit zero on the
# real tree. A linter that silently loads nothing would pass (2) alone.
set -eu
cd "$(dirname "$0")/.."

out=$(mktemp)
trap 'rm -f "$out"' EXIT

echo "lint-smoke: seeded fixture must fail"
if go run ./cmd/earmac-lint ./internal/analysis/testdata/src/hotalloc >"$out" 2>&1; then
    echo "lint-smoke: FAIL - linter exited 0 on a fixture seeded with violations" >&2
    cat "$out" >&2
    exit 1
fi
if ! grep -q 'append to unsized slice' "$out"; then
    echo "lint-smoke: FAIL - expected unsized-append finding missing" >&2
    cat "$out" >&2
    exit 1
fi

echo "lint-smoke: real tree must be clean"
go run ./cmd/earmac-lint ./...

echo "lint-smoke: OK"
