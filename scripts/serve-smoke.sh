#!/usr/bin/env sh
# Smoke test for earmac-serve: start the daemon, submit one Table 1
# config twice, and assert the second response is served from the
# content-addressed cache byte-identical to the first; then check that
# SIGTERM drains gracefully. The CI serve-smoke job runs this script;
# locally: make smoke-serve.
set -eu

ADDR="${EARMAC_SERVE_ADDR:-127.0.0.1:8321}"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "serve-smoke: building earmac-serve"
go build -o "$WORK/earmac-serve" ./cmd/earmac-serve

"$WORK/earmac-serve" -addr "$ADDR" -parallel 2 2>"$WORK/serve.log" &
SERVE_PID=$!

echo "serve-smoke: waiting for /v1/healthz"
i=0
until curl -sf "http://$ADDR/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "serve-smoke: server never became healthy" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    fi
    sleep 0.2
done

# Table 1, row "orchestra, ρ=1, β=2": the full-rate adversary the paper's
# O(n²+β) latency bound is exercised against.
CONFIG='{"algorithm":"orchestra","n":8,"rho_num":1,"rho_den":1,"beta":2,"rounds":200000}'

echo "serve-smoke: first submission (expect cache miss)"
curl -sf -D "$WORK/h1" -o "$WORK/r1.json" -X POST "http://$ADDR/v1/run" -d "$CONFIG"
grep -qi '^x-earmac-cache: *miss' "$WORK/h1" || {
    echo "serve-smoke: first response not a cache miss:" >&2
    cat "$WORK/h1" >&2
    exit 1
}

echo "serve-smoke: second submission (expect cache hit, byte-identical)"
curl -sf -D "$WORK/h2" -o "$WORK/r2.json" -X POST "http://$ADDR/v1/run" -d "$CONFIG"
grep -qi '^x-earmac-cache: *hit' "$WORK/h2" || {
    echo "serve-smoke: second response not served from cache:" >&2
    cat "$WORK/h2" >&2
    exit 1
}
cmp "$WORK/r1.json" "$WORK/r2.json" || {
    echo "serve-smoke: cached response is not byte-identical" >&2
    exit 1
}
grep -q '"algorithm":"orchestra"' "$WORK/r1.json" || {
    echo "serve-smoke: response does not look like a Report:" >&2
    cat "$WORK/r1.json" >&2
    exit 1
}

echo "serve-smoke: SIGTERM drain"
kill -TERM "$SERVE_PID"
i=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: server did not drain within 20s" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    fi
    sleep 0.2
done
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
grep -q 'drained, bye' "$WORK/serve.log" || {
    echo "serve-smoke: no graceful-drain message in server log:" >&2
    cat "$WORK/serve.log" >&2
    exit 1
}

echo "serve-smoke: OK (cache hit byte-identical, graceful drain)"
