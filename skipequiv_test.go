package earmac

// Property tests for the quiescence fast-forward engine (DESIGN.md
// §16): skipping must be invisible. A run with the engine enabled and
// the same run with Config.NoSkip set must produce bit-identical
// reports and bit-identical recorded traces, across algorithms,
// stochastic and phased patterns, duty-cycle knobs, and seeds. The
// zero-alloc tests extend the fast-path perf floor to both engine
// tiers (the O(1) quiescent tick and the closed-form span skip).

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"earmac/internal/adversary"
	"earmac/internal/algorithms/ksubsets"
	"earmac/internal/algorithms/orchestra"
	"earmac/internal/core"
	"earmac/internal/metrics"
	"earmac/internal/scenario"
)

// skipEquivAlgs crosses every registered routing algorithm the
// equivalence property runs over, including one ("adjust-window")
// without a Skipper implementation — its runs exercise the
// skip-incapable resolution where NoSkip is trivially identical.
var skipEquivAlgs = []string{
	"orchestra", "count-hop", "k-cycle", "k-clique",
	"k-subsets", "k-subsets-rrw", "aloha", "adjust-window",
}

// skipEquivConfig derives one deterministic fast-path config from the
// property inputs. Lenient + DisableChecks select the fast path, the
// only path the engine runs on; low ρ keeps long idle stretches in
// every workload so both engine tiers actually engage.
func skipEquivConfig(seed int64, algIdx, patIdx, disIdx uint8) Config {
	cfg := Config{
		Algorithm: skipEquivAlgs[int(algIdx)%len(skipEquivAlgs)],
		N:         6,
		K:         3,
		RhoNum:    1, RhoDen: 64,
		Beta:          2,
		Seed:          1 + (seed & 0xffff),
		Rounds:        16384,
		Lenient:       true,
		DisableChecks: true,
	}
	switch patIdx % 4 {
	case 0:
		cfg.Pattern = "uniform"
	case 1:
		cfg.Pattern = "bursty"
	case 2:
		cfg.Pattern = "diurnal"
	case 3:
		cfg.Phases = []Phase{
			{Pattern: "quiet", Rounds: 2048},
			{Pattern: "bernoulli", Rounds: 4096},
			{Pattern: "poisson-batch"},
		}
	}
	// Disruption and duty-cycling need a Tolerant algorithm — only
	// aloha qualifies; the knobs cover a duty-cycled wrap (lazy skipped
	// sleep accounting), a live jammer (pins spans, O(1) ticks stay),
	// and an outage window cutting through the idle stretches.
	if cfg.Algorithm == "aloha" {
		switch disIdx % 4 {
		case 1:
			cfg.SleepAfterIdle = 32
			cfg.WakeEvery = 16
		case 2:
			cfg.JamRhoNum, cfg.JamRhoDen = 1, 128
		case 3:
			cfg.Outages = []Outage{{Channel: 0, From: 4000, Rounds: 500}}
		}
	}
	return cfg
}

// TestSkipNoSkipEquivalenceQuick is the bit-identity property: for
// random (seed, algorithm, pattern, disruption) draws, the engine-on
// and NoSkip runs must agree on the full Report, and — when recording —
// on every trace byte.
func TestSkipNoSkipEquivalenceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many full simulations")
	}
	prop := func(seed int64, algIdx, patIdx, disIdx uint8) bool {
		cfg := skipEquivConfig(seed, algIdx, patIdx, disIdx)
		on, err := Run(cfg)
		if err != nil {
			t.Logf("config %+v: skip-on run failed: %v", cfg, err)
			return false
		}
		off := cfg
		off.NoSkip = true
		offRep, err := Run(off)
		if err != nil {
			t.Logf("config %+v: NoSkip run failed: %v", cfg, err)
			return false
		}
		if !reflect.DeepEqual(on, offRep) {
			t.Logf("config %+v:\nskip-on: %+v\nnoskip:  %+v", cfg, on, offRep)
			return false
		}
		// Recorded trace bytes. Recording a duty-cycled run installs a
		// per-round sleep observer that pins the engine on both sides,
		// so the duty case is covered by the report comparison above.
		var recOn, recOff bytes.Buffer
		onRec, offRec := cfg, off
		onRec.RecordTo, offRec.RecordTo = &recOn, &recOff
		if _, err := Run(onRec); err != nil {
			t.Logf("config %+v: recording skip-on run failed: %v", cfg, err)
			return false
		}
		if _, err := Run(offRec); err != nil {
			t.Logf("config %+v: recording NoSkip run failed: %v", cfg, err)
			return false
		}
		if !bytes.Equal(recOn.Bytes(), recOff.Bytes()) {
			t.Logf("config %+v: recorded traces differ:\nskip-on: %q\nnoskip:  %q",
				cfg, recOn.Bytes(), recOff.Bytes())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 24}); err != nil {
		t.Error(err)
	}
}

// steadySkipAllocsPerRound mirrors steadyAllocsPerRound but requires
// the quiescence engine to be enabled and to have actually engaged
// (the sim is quiescent when the measurement ends).
func steadySkipAllocsPerRound(t *testing.T, sys *core.System, adv core.Adversary, warmup, measure int64) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("allocs-per-round is meaningless under the race detector")
	}
	tr := metrics.NewTracker()
	tr.SampleEvery = 0
	sim := core.NewSim(sys, adv, core.Options{Tracker: tr})
	if !sim.FastPath() {
		t.Fatal("fast path not selected")
	}
	if !sim.SkipCapable() {
		t.Fatal("quiescence engine not enabled for this system")
	}
	if err := sim.Run(warmup); err != nil {
		t.Fatal(err)
	}
	// Probe that quiescence actually engages in steady state: step
	// single rounds until the sim reports itself quiescent (the run is
	// seeded, so this is deterministic, and Run settles at every exit
	// without leaving quiescence).
	engaged := false
	for i := 0; i < 4096 && !engaged; i++ {
		if err := sim.Run(1); err != nil {
			t.Fatal(err)
		}
		engaged = sim.Quiescent()
	}
	if !engaged {
		t.Fatal("sim never reached quiescence; the engine was not exercised")
	}
	best := -1.0
	for window := 0; window < 5; window++ {
		allocs := testing.AllocsPerRun(1, func() {
			if err := sim.Run(measure); err != nil {
				t.Error(err)
			}
		})
		if best < 0 || allocs < best {
			best = allocs
		}
		if best == 0 {
			break
		}
	}
	return best / float64(measure)
}

// TestFastPathZeroAllocsQuiescentTick pins tier 1 of the engine to the
// perf floor: a Bernoulli workload whose bucket almost always holds
// credit gives a span horizon of the current round — no span is ever
// provable — so idle stretches advance through O(1) quiescent ticks,
// which must not allocate.
func TestFastPathZeroAllocsQuiescentTick(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warmup is long")
	}
	sys, err := orchestra.New(6)
	if err != nil {
		t.Fatal(err)
	}
	// β = 8 keeps the bucket near its cap: credit is almost always
	// affordable, and Bernoulli exposes no draw horizon, so NextDraw
	// pins every span at its first round. ρ = 1/32 leaves orchestra's
	// conductor enough slack to fully drain its schedule between
	// injections — Quiescent demands an empty schedule.
	adv := adversary.New(adversary.T(1, 32, 8), scenario.Bernoulli(6, 11, 1, 32))
	perRound := steadySkipAllocsPerRound(t, sys, adv, 60000, 30000)
	if perRound != 0 {
		t.Errorf("quiescent-tick steady state allocates %.4f allocs/round, want 0", perRound)
	}
}

// TestFastPathZeroAllocsSpanSkip pins tier 2: at ρ = 1/64 the entry
// bucket starves for ~64 rounds after each spend, the closed-form
// horizon covers the starved stretch, and the engine must skip those
// spans without touching the allocator.
func TestFastPathZeroAllocsSpanSkip(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warmup is long")
	}
	sys, err := ksubsets.New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.New(adversary.T(1, 64, 1), adversary.Uniform(6, 42))
	perRound := steadySkipAllocsPerRound(t, sys, adv, 60000, 30000)
	if perRound != 0 {
		t.Errorf("span-skip steady state allocates %.4f allocs/round, want 0", perRound)
	}
}
