package earmac

import (
	"context"
	"errors"

	"earmac/internal/pool"
)

// Rho is an exact injection-rate fraction Num/Den.
type Rho struct {
	Num int64 `json:"num"`
	Den int64 `json:"den"`
}

// Grid builds a config grid — the shape of the paper's Table 1, every
// algorithm crossed with system sizes, rates, burstiness, and adversary
// patterns. Each listed dimension is crossed with every other; an empty
// dimension keeps the Base value. Base supplies everything the grid does
// not vary (rounds, leniency, targeting, …).
type Grid struct {
	Algorithms []string `json:"algorithms,omitempty"`
	Ns         []int    `json:"ns,omitempty"`
	Ks         []int    `json:"ks,omitempty"`
	Rhos       []Rho    `json:"rhos,omitempty"`
	Betas      []int64  `json:"betas,omitempty"`
	Patterns   []string `json:"patterns,omitempty"`
	// Channels, when non-empty, crosses network channel counts (the
	// sweep axis for networks of shared channels; Base.Topology selects
	// the shape). An empty dimension keeps Base.Channels.
	Channels []int `json:"channels,omitempty"`
	// Seeds, when non-empty, crosses the listed pattern seeds as the
	// innermost dimension — the seed-sweep axis for stochastic
	// scenarios. Each cell then runs with exactly the listed seed
	// instead of a derived one.
	Seeds []int64 `json:"seeds,omitempty"`
	Base  Config  `json:"base,omitempty"`
}

// Configs enumerates the cross product in deterministic order: algorithm
// outermost, then n, k, ρ, β, pattern, channel count, and seed innermost. Without an
// explicit Seeds dimension each cell gets its own derived seed —
// Base.Seed (default 1) plus the cell's index — so randomized patterns
// are independent across cells yet reproducible; with Seeds, cells use
// the listed seeds verbatim. Either way the enumeration (and therefore
// the Suite report) is independent of how many workers later run it.
func (g Grid) Configs() []Config {
	algs := g.Algorithms
	if len(algs) == 0 {
		algs = []string{g.Base.Algorithm}
	}
	ns := g.Ns
	if len(ns) == 0 {
		ns = []int{g.Base.N}
	}
	ks := g.Ks
	if len(ks) == 0 {
		ks = []int{g.Base.K}
	}
	rhos := g.Rhos
	if len(rhos) == 0 {
		rhos = []Rho{{g.Base.RhoNum, g.Base.RhoDen}}
	}
	betas := g.Betas
	if len(betas) == 0 {
		betas = []int64{g.Base.Beta}
	}
	pats := g.Patterns
	if len(pats) == 0 {
		pats = []string{g.Base.Pattern}
	}
	chans := g.Channels
	if len(chans) == 0 {
		chans = []int{g.Base.Channels}
	}
	baseSeed := g.Base.Seed
	if baseSeed == 0 {
		baseSeed = 1
	}
	seeds := g.Seeds
	deriveSeed := len(seeds) == 0
	if deriveSeed {
		seeds = []int64{0} // placeholder; the cell derives its own
	}
	cfgs := make([]Config, 0, len(algs)*len(ns)*len(ks)*len(rhos)*len(betas)*len(pats)*len(chans)*len(seeds))
	for _, alg := range algs {
		for _, n := range ns {
			for _, k := range ks {
				for _, rho := range rhos {
					for _, beta := range betas {
						for _, pat := range pats {
							for _, ch := range chans {
								for _, seed := range seeds {
									c := g.Base
									// RecordTo is per-cell state: one shared writer
									// interleaved by parallel cells would yield a
									// corrupt trace. Assign per-cell writers on the
									// Suite's Configs instead (as earmac-sweep
									// -record-dir does). Replay stays inherited —
									// cells build independent cursors over the
									// shared, read-only trace.
									c.RecordTo = nil
									c.Algorithm = alg
									c.N = n
									c.K = k
									c.RhoNum, c.RhoDen = rho.Num, rho.Den
									c.Beta = beta
									c.Pattern = pat
									c.Channels = ch
									if deriveSeed {
										c.Seed = baseSeed + int64(len(cfgs))
									} else {
										c.Seed = seed
									}
									cfgs = append(cfgs, c)
								}
							}
						}
					}
				}
			}
		}
	}
	return cfgs
}

// Suite is an ordered list of configurations run as one batch.
type Suite struct {
	Configs []Config `json:"configs"`
}

// NewSuite builds a Suite from a grid.
func NewSuite(g Grid) Suite { return Suite{Configs: g.Configs()} }

// SuiteOptions tunes Suite.Run.
type SuiteOptions struct {
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// OnResult, when non-nil, is invoked as each cell finishes, in
	// completion order. It may be called from multiple goroutines
	// concurrently.
	OnResult func(SuiteResult)
}

// Per-cell verdicts.
const (
	VerdictStable   = "stable"
	VerdictUnstable = "unstable"
	VerdictError    = "error"
	VerdictSkipped  = "skipped" // cell not run, or interrupted, by context cancellation
)

// SuiteResult is one cell's outcome.
type SuiteResult struct {
	// Index is the cell's position in Suite.Configs; results are always
	// reported in index order regardless of worker count.
	Index   int    `json:"index"`
	Config  Config `json:"config"`
	Report  Report `json:"report"`
	Verdict string `json:"verdict"`
	Error   string `json:"error,omitempty"`
}

// SuiteReport aggregates a suite run. It is JSON-serializable and
// byte-identical across worker counts for the same Configs.
type SuiteReport struct {
	Cells    int           `json:"cells"`
	Stable   int           `json:"stable"`
	Unstable int           `json:"unstable"`
	Errors   int           `json:"errors"`
	Skipped  int           `json:"skipped,omitempty"`
	Results  []SuiteResult `json:"results"`
}

// Run executes every config across a bounded worker pool. Each cell is
// independent (own system, adversary, tracker), so runs are
// deterministic per cell and the assembled report does not depend on the
// worker count. A cell that fails validation or simulation is recorded
// with VerdictError; the suite keeps going. On context cancellation Run
// returns the partial report alongside ctx.Err(), with unreached and
// interrupted cells marked VerdictSkipped.
func (s Suite) Run(ctx context.Context, opts SuiteOptions) (SuiteReport, error) {
	results := make([]SuiteResult, len(s.Configs))
	for i := range results {
		results[i] = SuiteResult{Index: i, Config: s.Configs[i], Verdict: VerdictSkipped}
	}
	err := pool.RunIndexed(ctx, len(s.Configs), opts.Workers, func(i int) {
		res := runCell(ctx, i, s.Configs[i])
		results[i] = res
		if opts.OnResult != nil {
			opts.OnResult(res)
		}
	})
	return aggregate(results), err
}

func runCell(ctx context.Context, i int, cfg Config) SuiteResult {
	res := SuiteResult{Index: i, Config: cfg}
	rep, err := RunContext(ctx, cfg)
	res.Report = rep
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// An interrupted cell is not a failure of the cell.
		res.Verdict = VerdictSkipped
		res.Error = err.Error()
	case err != nil:
		res.Verdict = VerdictError
		res.Error = err.Error()
	case rep.Stable:
		res.Verdict = VerdictStable
	default:
		res.Verdict = VerdictUnstable
	}
	return res
}

// MergeResults assembles a SuiteReport from per-cell results produced
// elsewhere — the cluster coordinator's path, where cells run on
// different worker processes and arrive in completion order. Results
// are placed by their Index, never by arrival order, and missing cells
// keep the same skipped placeholder Run would leave (Config included),
// so the merged report is byte-identical to a single-process Run over
// the same Configs. A result whose index is out of range is dropped.
func (s Suite) MergeResults(results []SuiteResult) SuiteReport {
	ordered := make([]SuiteResult, len(s.Configs))
	for i := range ordered {
		ordered[i] = SuiteResult{Index: i, Config: s.Configs[i], Verdict: VerdictSkipped}
	}
	for _, r := range results {
		if r.Index >= 0 && r.Index < len(ordered) {
			ordered[r.Index] = r
		}
	}
	return aggregate(ordered)
}

func aggregate(results []SuiteResult) SuiteReport {
	rep := SuiteReport{Cells: len(results), Results: results}
	for _, r := range results {
		switch r.Verdict {
		case VerdictStable:
			rep.Stable++
		case VerdictUnstable:
			rep.Unstable++
		case VerdictError:
			rep.Errors++
		case VerdictSkipped:
			rep.Skipped++
		}
	}
	return rep
}
