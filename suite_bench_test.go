package earmac

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// benchGrid is a 64-cell grid heavy enough for the worker pool to matter.
func benchGrid() Grid {
	g := grid64()
	g.Base.Rounds = 20000
	g.Base.DisableChecks = true
	return g
}

func benchSuite(b *testing.B, workers int) {
	suite := NewSuite(benchGrid())
	cells := len(suite.Configs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := suite.Run(context.Background(), SuiteOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors > 0 {
			b.Fatalf("%d cells errored", rep.Errors)
		}
	}
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkSuite contrasts serial execution with the bounded worker
// pool; at GOMAXPROCS > 1 the parallel variant must be measurably
// faster (compare cells/s).
func BenchmarkSuite(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchSuite(b, 1) })
	b.Run(fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) { benchSuite(b, 0) })
}
