package earmac

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// grid64 is a 64-cell grid of cheap runs, the size of a realistic
// Table-1-style sweep: 2 algorithms × 2 sizes × 4 rates × 2 burstiness ×
// 2 patterns.
func grid64() Grid {
	return Grid{
		Algorithms: []string{"orchestra", "count-hop"},
		Ns:         []int{4, 5},
		Rhos:       []Rho{{1, 3}, {1, 2}, {2, 3}, {1, 1}},
		Betas:      []int64{1, 2},
		Patterns:   []string{"uniform", "round-robin"},
		Base:       Config{Rounds: 2000, Seed: 100},
	}
}

func TestGridConfigsCrossProduct(t *testing.T) {
	cfgs := grid64().Configs()
	if len(cfgs) != 64 {
		t.Fatalf("got %d configs, want 64", len(cfgs))
	}
	// Deterministic order: algorithm outermost, pattern innermost.
	if cfgs[0].Algorithm != "orchestra" || cfgs[0].Pattern != "uniform" {
		t.Errorf("first cell %+v", cfgs[0])
	}
	if cfgs[1].Pattern != "round-robin" {
		t.Errorf("second cell should flip the innermost dimension: %+v", cfgs[1])
	}
	if cfgs[32].Algorithm != "count-hop" {
		t.Errorf("cell 32 should flip the outermost dimension: %+v", cfgs[32])
	}
	// Per-run seeds: base + index.
	for i, c := range cfgs {
		if c.Seed != 100+int64(i) {
			t.Fatalf("cell %d seed = %d, want %d", i, c.Seed, 100+int64(i))
		}
		if c.Rounds != 2000 {
			t.Fatalf("cell %d did not inherit Base.Rounds", i)
		}
	}
}

func TestGridConfigsEmptyDimensionsUseBase(t *testing.T) {
	cfgs := Grid{Base: Config{Algorithm: "rrw", N: 4}}.Configs()
	if len(cfgs) != 1 {
		t.Fatalf("got %d configs, want 1", len(cfgs))
	}
	if cfgs[0].Algorithm != "rrw" || cfgs[0].N != 4 || cfgs[0].Seed != 1 {
		t.Errorf("cell %+v", cfgs[0])
	}
}

// TestSuiteDeterministicAcrossWorkers is the contract behind -parallel:
// the same grid and seeds produce byte-identical JSON no matter how many
// workers execute it. Run with -race this also exercises the worker
// pool for data races on a ≥64-cell grid.
func TestSuiteDeterministicAcrossWorkers(t *testing.T) {
	suite := NewSuite(grid64())
	var blobs [][]byte
	for _, workers := range []int{1, 4, 16} {
		rep, err := suite.Run(context.Background(), SuiteOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Cells != 64 || rep.Errors != 0 || rep.Skipped != 0 {
			t.Fatalf("workers=%d: report %d cells, %d errors, %d skipped",
				workers, rep.Cells, rep.Errors, rep.Skipped)
		}
		if rep.Stable+rep.Unstable != rep.Cells {
			t.Fatalf("workers=%d: verdicts don't partition the cells: %+v", workers, rep)
		}
		blob, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("workers=%d: marshal: %v", workers, err)
		}
		blobs = append(blobs, blob)
	}
	for i := 1; i < len(blobs); i++ {
		if string(blobs[i]) != string(blobs[0]) {
			t.Errorf("suite JSON differs between worker counts")
		}
	}
}

func TestSuiteResultsInIndexOrder(t *testing.T) {
	suite := NewSuite(Grid{
		Algorithms: []string{"orchestra", "count-hop", "rrw"},
		Ns:         []int{4, 5},
		Base:       Config{Rounds: 1000},
	})
	rep, err := suite.Run(context.Background(), SuiteOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range rep.Results {
		if res.Index != i {
			t.Fatalf("result %d has index %d", i, res.Index)
		}
		if !reflect.DeepEqual(res.Config, suite.Configs[i]) {
			t.Fatalf("result %d config mismatch", i)
		}
	}
}

func TestSuiteRecordsBadCellsAndKeepsGoing(t *testing.T) {
	suite := Suite{Configs: []Config{
		{Algorithm: "orchestra", N: 4, Rounds: 1000},
		{Algorithm: "no-such-algorithm", Rounds: 1000},
		{Algorithm: "count-hop", N: 4, Rounds: 1000},
	}}
	rep, err := suite.Run(context.Background(), SuiteOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 1 {
		t.Fatalf("errors = %d, want 1: %+v", rep.Errors, rep)
	}
	if rep.Results[1].Verdict != VerdictError || rep.Results[1].Error == "" {
		t.Errorf("bad cell recorded as %+v", rep.Results[1])
	}
	for _, i := range []int{0, 2} {
		if rep.Results[i].Verdict != VerdictStable {
			t.Errorf("cell %d verdict %q, want stable", i, rep.Results[i].Verdict)
		}
	}
}

func TestSuiteHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	suite := NewSuite(grid64())
	rep, err := suite.Run(ctx, SuiteOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Cells != 64 {
		t.Fatalf("partial report covers %d cells", rep.Cells)
	}
	if rep.Stable+rep.Unstable+rep.Errors+rep.Skipped != rep.Cells {
		t.Errorf("verdict counts don't partition the cells: %+v", rep)
	}
}

func TestSuiteOnResultSeesEveryCell(t *testing.T) {
	suite := NewSuite(Grid{
		Algorithms: []string{"orchestra"},
		Ns:         []int{4, 5, 6},
		Base:       Config{Rounds: 1000},
	})
	seen := make(chan int, len(suite.Configs))
	_, err := suite.Run(context.Background(), SuiteOptions{
		Workers:  2,
		OnResult: func(r SuiteResult) { seen <- r.Index },
	})
	if err != nil {
		t.Fatal(err)
	}
	close(seen)
	got := map[int]bool{}
	for i := range seen {
		got[i] = true
	}
	if len(got) != len(suite.Configs) {
		t.Errorf("OnResult saw %d distinct cells, want %d", len(got), len(suite.Configs))
	}
}

// TestGridChannelsDimension: the channel-count axis crosses like any
// other dimension and lands in each cell's Config.
func TestGridChannelsDimension(t *testing.T) {
	g := Grid{
		Algorithms: []string{"orchestra", "count-hop"},
		Channels:   []int{2, 3, 4},
		Base:       Config{Topology: "line", N: 5, Rounds: 500},
	}
	cfgs := g.Configs()
	if len(cfgs) != 6 {
		t.Fatalf("got %d cells, want 6", len(cfgs))
	}
	for i, cfg := range cfgs {
		if cfg.Topology != "line" {
			t.Errorf("cell %d lost the topology", i)
		}
		if want := []int{2, 3, 4}[i%3]; cfg.Channels != want {
			t.Errorf("cell %d channels = %d, want %d", i, cfg.Channels, want)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("cell %d invalid: %v", i, err)
		}
	}
}
