package earmac

// The golden-trace conformance corpus: every registered algorithm is
// pinned by two committed traces — a stochastic (bernoulli) scenario
// and a phased (quiet → burst → sustained poisson) one. Each trace's
// footer records the run's final flat counters; the conformance test
// replays the trace on BOTH the fast and the checked simulator paths
// and requires bit-identical counters and a bit-identical re-recorded
// injection stream. Regenerate the corpus with
//
//	go test -run TestGoldenTraceCorpus -update .
//
// after any deliberate change to an algorithm's behaviour, the RNG
// plumbing, or the trace format (bump TraceVersion for the latter).

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"earmac/internal/adversary"
	"earmac/internal/scenario"
)

var update = flag.Bool("update", false, "regenerate golden traces and CLI fixtures")

const traceDir = "testdata/traces"

type corpusCase struct {
	name string
	cfg  Config
}

// corpusCases enumerates the corpus: every algorithm × {stochastic,
// phased}. Small horizons keep the committed files a few KB each while
// still crossing several phase boundaries and bucket refill cycles.
func corpusCases() []corpusCase {
	var out []corpusCase
	for _, alg := range Algorithms() {
		out = append(out,
			corpusCase{alg + "-stochastic", Config{
				Algorithm: alg, N: 6, K: 3,
				RhoNum: 1, RhoDen: 3, Beta: 2,
				Pattern: "bernoulli", Seed: 7, Rounds: 2000,
			}},
			corpusCase{alg + "-phased", Config{
				Algorithm: alg, N: 6, K: 3,
				RhoNum: 1, RhoDen: 2, Beta: 3,
				Phases: []Phase{
					{Pattern: "quiet", Rounds: 400},
					{Pattern: "bursty", Rounds: 400},
					{Pattern: "poisson-batch", Rounds: 0},
				},
				Seed: 9, Rounds: 2000,
			}},
		)
	}
	return out
}

func tracePath(name string) string { return filepath.Join(traceDir, name+".trace.jsonl") }

func TestGoldenTraceCorpus(t *testing.T) {
	cases := corpusCases()
	if *update {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, c := range cases {
			f, err := os.Create(tracePath(c.name))
			if err != nil {
				t.Fatal(err)
			}
			cfg := c.cfg
			cfg.RecordTo = f
			if _, err := Run(cfg); err != nil {
				t.Fatalf("%s: recording: %v", c.name, err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f, err := os.Open(tracePath(c.name))
			if err != nil {
				t.Fatalf("missing golden trace (regenerate with -update): %v", err)
			}
			tr, err := ReadTrace(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			if tr.Footer == nil || tr.Footer.Counters == nil {
				t.Fatal("golden trace has no pinned counters")
			}
			want := *tr.Footer.Counters

			// The recorded stream must respect the (ρ, β) contract it
			// was sampled under.
			cfg, err := TraceConfig(tr)
			if err != nil {
				t.Fatal(err)
			}
			typ := adversary.T(cfg.RhoNum, cfg.RhoDen, cfg.Beta)
			if err := scenario.CheckAdmissible(tr, typ); err != nil {
				t.Errorf("golden trace violates its contract: %v", err)
			}

			// Replay on both paths: counters and the re-recorded stream
			// must be bit-identical to the recording.
			modes := []struct {
				name   string
				mutate func(*Config)
			}{
				{"checked", func(c *Config) { c.ForceChecked = true }},
				{"fast", func(c *Config) { c.Lenient, c.DisableChecks = true, true }},
			}
			for _, mode := range modes {
				rcfg, err := ReplayConfig(tr)
				if err != nil {
					t.Fatal(err)
				}
				mode.mutate(&rcfg)
				var buf bytes.Buffer
				rcfg.RecordTo = &buf
				rep, err := Run(rcfg)
				if err != nil {
					t.Fatalf("%s replay: %v", mode.name, err)
				}
				if len(rep.Violations) != 0 {
					t.Fatalf("%s replay hit violations: %v", mode.name, rep.Violations)
				}
				got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("%s replay re-recording: %v", mode.name, err)
				}
				if got.Footer == nil || got.Footer.Counters == nil {
					t.Fatalf("%s replay recorded no counters", mode.name)
				}
				if *got.Footer.Counters != want {
					t.Errorf("%s replay counters differ from the golden footer:\ngot  %+v\nwant %+v",
						mode.name, *got.Footer.Counters, want)
				}
				if !reflect.DeepEqual(got.Events, tr.Events) {
					t.Errorf("%s replay re-recorded a different injection stream (%d events vs %d)",
						mode.name, len(got.Events), len(tr.Events))
				}
			}
		})
	}
}

// TestGoldenTraceCorpusComplete pins the corpus inventory itself: a
// newly registered algorithm must gain its two golden traces. The
// multi-channel corpus ("net-" prefix, see network_traces_test.go) and
// the disruption corpus ("dis-" prefix, see disruption_traces_test.go)
// are inventoried separately.
func TestGoldenTraceCorpusComplete(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(traceDir, "*.trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	single := files[:0]
	for _, f := range files {
		base := filepath.Base(f)
		if !strings.HasPrefix(base, "net-") && !strings.HasPrefix(base, "dis-") {
			single = append(single, f)
		}
	}
	want := 2 * len(Algorithms())
	if len(single) != want {
		t.Fatalf("corpus has %d single-channel traces, want %d (2 per algorithm); regenerate with -update", len(single), want)
	}
}

// TestReplayOfCancelledRecording: a recording cut short still yields a
// replayable trace — the footer pins the counters at the cancellation
// round, and ReplayConfig truncates the horizon to match, so the
// replay reproduces the partial run bit-identically instead of running
// the configured horizon past the recording.
func TestReplayOfCancelledRecording(t *testing.T) {
	var buf bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		Algorithm: "orchestra", N: 6,
		RhoNum: 1, RhoDen: 3, Beta: 2,
		Pattern: "poisson-batch", Seed: 21, Rounds: 50000,
		RecordTo:      &buf,
		ProgressEvery: 7000,
		OnProgress: func(p Progress) {
			if p.Round >= 7000 {
				cancel()
			}
		},
	}
	if _, err := RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Footer == nil || tr.Footer.Counters == nil || tr.Footer.Counters.Rounds != 7000 {
		t.Fatalf("footer not pinned at the cancellation round: %+v", tr.Footer)
	}
	rcfg, err := ReplayConfig(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rcfg.Rounds != 7000 {
		t.Fatalf("ReplayConfig horizon = %d, want truncated to 7000", rcfg.Rounds)
	}
	var rbuf bytes.Buffer
	rcfg.RecordTo = &rbuf
	if _, err := Run(rcfg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&rbuf)
	if err != nil {
		t.Fatal(err)
	}
	if *got.Footer.Counters != *tr.Footer.Counters {
		t.Errorf("replay of the partial run diverged:\ngot  %+v\nwant %+v",
			*got.Footer.Counters, *tr.Footer.Counters)
	}
}

// TestStochasticScenariosAdmissible is the property-based check: for
// random seeds, rates, and burstiness, every stochastic (and phased)
// scenario injects a packet stream that the checked path — including
// the packet-conservation validator, which fires at round 10007 — runs
// without a single model violation, and whose recorded trace passes the
// exact leaky-bucket audit.
func TestStochasticScenariosAdmissible(t *testing.T) {
	prop := func(seedRaw uint32, rnRaw, rdRaw, bRaw uint8, poisson, phased bool) bool {
		rd := int64(rdRaw%60) + 1
		rn := int64(rnRaw)%rd + 1
		b := int64(bRaw%6) + 1
		pat := "bernoulli"
		if poisson {
			pat = "poisson-batch"
		}
		cfg := Config{
			Algorithm: "orchestra", N: 6,
			RhoNum: rn, RhoDen: rd, Beta: b,
			Pattern: pat, Seed: int64(seedRaw) + 1,
			Rounds: 12000, // past the conservation checkpoint at 10007
		}
		if phased {
			cfg.Phases = []Phase{
				{Pattern: "quiet", Rounds: 500},
				{Pattern: pat, Rounds: 2500},
				{Pattern: "bernoulli", Rounds: 0},
			}
		}
		var buf bytes.Buffer
		cfg.RecordTo = &buf
		rep, err := Run(cfg) // strict + conservation checks on
		if err != nil {
			t.Logf("cfg %+v: %v", cfg, err)
			return false
		}
		if len(rep.Violations) != 0 {
			t.Logf("cfg %+v: violations %v", cfg, rep.Violations)
			return false
		}
		tr, err := ReadTrace(&buf)
		if err != nil {
			t.Logf("cfg %+v: %v", cfg, err)
			return false
		}
		if err := scenario.CheckAdmissible(tr, adversary.T(rn, rd, b)); err != nil {
			t.Logf("cfg %+v: %v", cfg, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
