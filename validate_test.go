package earmac

import (
	"errors"
	"testing"
)

func TestValidateZeroConfig(t *testing.T) {
	// A zero Config validates: every field takes its documented default.
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config invalid: %v", err)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"unknown algorithm", Config{Algorithm: "wat"}, ErrUnknownAlgorithm},
		{"unknown pattern", Config{Pattern: "wat"}, ErrUnknownPattern},
		{"rho > 1", Config{RhoNum: 3, RhoDen: 2}, ErrBadRate},
		{"rho zero", Config{RhoNum: 0, RhoDen: 5}, ErrBadRate},
		{"rho negative num", Config{RhoNum: -1, RhoDen: 2}, ErrBadRate},
		{"rho negative den", Config{RhoNum: 1, RhoDen: -2}, ErrBadRate},
		{"beta negative", Config{Beta: -3}, ErrBadBurst},
		{"n too small", Config{N: 1}, ErrBadSize},
		{"n too small for k-cycle", Config{Algorithm: "k-cycle", N: 2}, ErrBadSize},
		{"n above k-subsets max", Config{Algorithm: "k-subsets", N: 65}, ErrBadSize},
		{"k too small", Config{Algorithm: "k-subsets", N: 6, K: 1}, ErrBadCap},
		{"k above n (strict)", Config{Algorithm: "aloha", N: 4, K: 9}, ErrBadCap},
		{"negative rounds", Config{Rounds: -1}, ErrBadRounds},
		{"negative stop", Config{StopInjectionsAfter: -5}, ErrBadRounds},
		{"targeted src out of range", Config{Pattern: "single-target", N: 4, Src: 4}, ErrBadStation},
		{"targeted dest out of range", Config{Pattern: "single-target", N: 4, Dest: -1}, ErrBadStation},
		{"hot-source src out of range", Config{Pattern: "hot-source", N: 4, Src: 7}, ErrBadStation},
		{"unknown topology", Config{Topology: "ring"}, ErrBadTopology},
		{"channels without topology", Config{Channels: 3}, ErrBadTopology},
		{"links without topology", Config{Links: [][2]int{{0, 1}}}, ErrBadTopology},
		{"one channel", Config{Topology: "line", Channels: 1}, ErrBadTopology},
		{"links on named topology", Config{Topology: "star", Channels: 3, Links: [][2]int{{0, 1}}}, ErrBadTopology},
		{"custom without links", Config{Topology: "custom", Channels: 3}, ErrBadTopology},
		{"custom link out of range", Config{Topology: "custom", Channels: 2, Links: [][2]int{{0, 2}}}, ErrBadTopology},
		{"custom self-loop", Config{Topology: "custom", Channels: 2, Links: [][2]int{{1, 1}}}, ErrBadTopology},
		{"network src out of range", Config{Topology: "line", Channels: 2, N: 4, Pattern: "single-target", Src: 8}, ErrBadStation},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("%s: error %v does not wrap %v", c.name, err, c.want)
		}
	}
}

func TestValidateAcceptsClampedK(t *testing.T) {
	// k-cycle and k-clique clamp over-range k instead of rejecting it; the
	// registry metadata records that (KStrict unset), so Validate and Run
	// both accept k > n for them.
	cfg := Config{Algorithm: "k-cycle", N: 7, K: 9, Rounds: 2000}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("clamped k rejected: %v", err)
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.EnergyCap != 4 { // clamp 2k ≤ n+1 at n=7
		t.Errorf("clamped cap = %d, want 4", rep.EnergyCap)
	}
}

func TestRunPropagatesTypedErrors(t *testing.T) {
	if _, err := Run(Config{Algorithm: "nope"}); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("Run unknown algorithm: %v", err)
	}
	if _, err := Run(Config{RhoNum: 5, RhoDen: 2}); !errors.Is(err, ErrBadRate) {
		t.Errorf("Run bad rate: %v", err)
	}
}

func TestRegistryMetadataMatchesInstances(t *testing.T) {
	// Every registry entry's declared capabilities must agree with what an
	// instantiated system reports — metadata answers must never lie.
	const n, k = 6, 3
	for _, entry := range AllAlgorithms() {
		rep, err := Run(Config{Algorithm: entry.Name, N: n, K: k, Rounds: 512, DisableChecks: true})
		if err != nil {
			t.Errorf("%s: %v", entry.Name, err)
			continue
		}
		if entry.UsesK && !entry.KStrict {
			// Clamping algorithms (k-cycle, k-clique) may settle on a
			// feasible cap at or below the requested k.
			if rep.EnergyCap > entry.CapFor(n, k) {
				t.Errorf("%s: instance cap %d above requested %d", entry.Name, rep.EnergyCap, entry.CapFor(n, k))
			}
		} else if rep.EnergyCap != entry.CapFor(n, k) {
			t.Errorf("%s: CapFor = %d, instance cap %d", entry.Name, entry.CapFor(n, k), rep.EnergyCap)
		}
		if rep.PlainPacket != entry.PlainPacket || rep.Direct != entry.Direct || rep.Oblivious != entry.Oblivious {
			t.Errorf("%s: meta flags (%v,%v,%v) != instance (%v,%v,%v)", entry.Name,
				entry.PlainPacket, entry.Direct, entry.Oblivious,
				rep.PlainPacket, rep.Direct, rep.Oblivious)
		}
	}
}

func TestPatternMetadataComplete(t *testing.T) {
	if got := len(AllPatterns()); got != len(Patterns()) {
		t.Errorf("AllPatterns has %d entries, Patterns %d", got, len(Patterns()))
	}
	for _, p := range AllPatterns() {
		if p.Summary == "" {
			t.Errorf("pattern %s missing summary", p.Name)
		}
	}
	if p, ok := PatternInfo("single-target"); !ok || !p.Targeted {
		t.Error("single-target should be a targeted pattern")
	}
	if p, ok := PatternInfo("uniform"); !ok || !p.Randomized || p.Targeted {
		t.Error("uniform should be randomized and untargeted")
	}
}

// TestValidateNetworkConfigs: valid network spellings pass, including
// the global station space for targeted patterns and the connected
// custom graph surfaced at Run time.
func TestValidateNetworkConfigs(t *testing.T) {
	ok := []Config{
		{Topology: "line"}, // channels default to 2
		{Topology: "star", Channels: 4},
		{Topology: "clique", Channels: 3},
		{Topology: "custom", Channels: 3, Links: [][2]int{{0, 1}, {1, 2}}},
		{Topology: "line", Channels: 2, N: 4, Pattern: "single-target", Src: 1, Dest: 7}, // dest in channel 1
	}
	for _, cfg := range ok {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", cfg, err)
		}
	}
	// A disconnected custom graph passes metadata validation but fails
	// loudly at Run (routing needs reachability).
	cfg := Config{Topology: "custom", Channels: 4, Links: [][2]int{{0, 1}, {2, 3}}, Rounds: 10}
	if _, err := Run(cfg); !errors.Is(err, ErrBadTopology) {
		t.Errorf("disconnected graph: Run returned %v, want ErrBadTopology", err)
	}
}
